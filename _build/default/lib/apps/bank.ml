let accounts = 16

type state = int array (* immutable by convention: apply copies *)

type cmd = Deposit of int * int | Transfer of int * int * int

let encode (c : cmd) = Abcast_sim.Storage.encode c

let deposit_cmd ~account ~amount = encode (Deposit (account, amount))

let transfer_cmd ~src ~dst ~amount = encode (Transfer (src, dst, amount))

module Machine = struct
  type nonrec state = state

  let name = "bank"

  let initial = Array.make accounts 0

  let valid a = a >= 0 && a < accounts

  let apply state data =
    match (Abcast_sim.Storage.decode data : cmd) with
    | Deposit (a, amt) when valid a && amt > 0 ->
      let s = Array.copy state in
      s.(a) <- s.(a) + amt;
      s
    | Transfer (src, dst, amt)
      when valid src && valid dst && amt > 0 && state.(src) >= amt ->
      let s = Array.copy state in
      s.(src) <- s.(src) - amt;
      s.(dst) <- s.(dst) + amt;
      s
    | Deposit _ | Transfer _ -> state
    | exception _ -> state
end

module Replica = Smr.Make (Machine)

let balance state a = state.(a)

let total state = Array.fold_left ( + ) 0 state
