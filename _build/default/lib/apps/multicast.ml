type group = int

type envelope = { dst : group list; body : string }

type t = {
  member_of : group list;
  mutable delivered_rev : (Abcast_core.Payload.id * string) list;
  mutable skipped : int;
}

let create ~member_of = { member_of; delivered_rev = []; skipped = 0 }

let encode ~dst body =
  if dst = [] then invalid_arg "Multicast.encode: empty destination set";
  Abcast_sim.Storage.encode { dst; body }

let deliver t (p : Abcast_core.Payload.t) =
  match (Abcast_sim.Storage.decode p.data : envelope) with
  | exception _ -> ()
  | { dst; body } ->
    if List.exists (fun g -> List.mem g t.member_of) dst then
      t.delivered_rev <- (p.id, body) :: t.delivered_rev
    else t.skipped <- t.skipped + 1

let delivered t = List.rev t.delivered_rev

let delivered_count t = List.length t.delivered_rev

let skipped t = t.skipped
