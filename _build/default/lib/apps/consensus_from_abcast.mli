(** Consensus from Atomic Broadcast (paper §6.1).

    The reduction closing the equivalence: "to propose a value a process
    atomically broadcasts it; the first value to be delivered can be
    chosen as the decided value". Instances are named by strings so many
    independent consensus can share one broadcast stream. Total order
    makes every replica pick the same first proposal per instance. *)

type t
(** Decision bookkeeping of one process. *)

val create : unit -> t

val encode_proposal : instance:string -> value:string -> string
(** Payload to [A-broadcast] in order to propose. *)

val deliver : t -> Abcast_core.Payload.t -> unit
(** Wire as the protocol's A-deliver upcall; records first proposals. *)

val decision : t -> instance:string -> string option
(** The decided value of an instance, once some proposal for it has been
    delivered. *)
