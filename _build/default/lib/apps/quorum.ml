type config = {
  weights : int array;
  read_quorum : int;
  write_quorum : int;
}

let total_votes c = Array.fold_left ( + ) 0 c.weights

let valid c =
  let total = total_votes c in
  Array.for_all (fun w -> w >= 0) c.weights
  && c.read_quorum > 0 && c.write_quorum > 0
  && c.read_quorum + c.write_quorum > total
  && 2 * c.write_quorum > total

let votes_of c replicas =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc r ->
      if r >= 0 && r < Array.length c.weights && not (Hashtbl.mem seen r)
      then begin
        Hashtbl.add seen r ();
        acc + c.weights.(r)
      end
      else acc)
    0 replicas

let is_read_quorum c replicas = votes_of c replicas >= c.read_quorum

let is_write_quorum c replicas = votes_of c replicas >= c.write_quorum

module Store = struct
  type t = {
    mutable value : (string * int) option; (* value, version *)
    mutable epoch : int;
    mutable config : config option;
  }

  let create () = { value = None; epoch = 0; config = None }

  let epoch t = t.epoch

  let config t = t.config

  let reconfig_cmd (c : config) = Abcast_sim.Storage.encode c

  let deliver t (p : Abcast_core.Payload.t) =
    match (Abcast_sim.Storage.decode p.data : config) with
    | exception _ -> ()
    | c ->
      if valid c then begin
        t.config <- Some c;
        t.epoch <- t.epoch + 1
      end

  let local_read t =
    match t.value with
    | None -> None
    | Some (v, version) -> Some (v, version, t.epoch)

  let apply_write t ~epoch ~version v =
    let current_version = match t.value with Some (_, ver) -> ver | None -> 0 in
    if epoch <> t.epoch || version <= current_version then false
    else begin
      t.value <- Some (v, version);
      true
    end
end

module Client = struct
  type read_result = {
    value : string option;
    version : int;
    responders : int list;
  }

  let read config ~epoch ~responses =
    let responders = List.map fst responses in
    let stale =
      List.exists
        (fun (_, r) -> match r with Some (_, _, e) -> e > epoch | None -> false)
        responses
    in
    if stale then Error "stale configuration: a replica is in a newer epoch"
    else if not (is_read_quorum config responders) then
      Error "insufficient votes for a read quorum"
    else begin
      let best =
        List.fold_left
          (fun acc (_, r) ->
            match (acc, r) with
            | _, None -> acc
            | None, Some (v, ver, _) -> Some (v, ver)
            | Some (_, bver), Some (v, ver, _) when ver > bver -> Some (v, ver)
            | Some _, Some _ -> acc)
          None responses
      in
      match best with
      | None -> Ok { value = None; version = 0; responders }
      | Some (v, ver) -> Ok { value = Some v; version = ver; responders }
    end

  let write_version (r : read_result) = r.version + 1
end
