(** Deferred-update replicated database (paper §6.2).

    The termination protocol of Pedone–Guerraoui–Schiper, rebuilt on our
    atomic broadcast: a transaction executes locally at one replica
    against its current versions, then at commit time its read set (with
    the versions read) and write set are atomically broadcast. Every
    replica certifies delivered transactions in the {e same total order}:
    a transaction commits iff every version it read is still current;
    committed writes install new versions. Since certification is a
    deterministic function of the delivery sequence, all replicas take
    identical commit/abort decisions — no atomic commitment protocol is
    needed. *)

type t
(** One database replica. *)

val create : unit -> t

val read : t -> string -> int * int
(** [read t key] is [(value, version)] at this replica (missing keys read
    as [(0, 0)]). *)

(** A transaction being built locally. *)
module Txn : sig
  type txn

  val begin_ : t -> txn
  (** Start a transaction at a replica. *)

  val read : txn -> string -> int
  (** Read a key through the transaction, recording the version for
      certification. Repeated reads are stable. *)

  val write : txn -> string -> int -> unit
  (** Buffer a write (visible to subsequent [read]s of this txn). *)

  val payload : txn -> string
  (** Serialize read and write sets for [A-broadcast] at commit time. *)
end

val deliver : t -> Abcast_core.Payload.t -> unit
(** Certify and (maybe) apply a delivered transaction. Wire as the
    protocol's A-deliver upcall. *)

val committed : t -> int
(** Transactions committed at this replica so far. *)

val aborted : t -> int
(** Transactions aborted by certification. *)

val digest : t -> string
(** Fingerprint of current data + versions (replica convergence). *)

val hooks : t -> Abcast_core.Protocol.app
(** Checkpoint hooks: the database state is the application checkpoint. *)
