type t = { decisions : (string, string) Hashtbl.t }

type proposal = { instance : string; value : string }

let create () = { decisions = Hashtbl.create 16 }

let encode_proposal ~instance ~value =
  Abcast_sim.Storage.encode { instance; value }

let deliver t (p : Abcast_core.Payload.t) =
  match (Abcast_sim.Storage.decode p.data : proposal) with
  | exception _ -> ()
  | { instance; value } ->
    if not (Hashtbl.mem t.decisions instance) then
      Hashtbl.add t.decisions instance value

let decision t ~instance = Hashtbl.find_opt t.decisions instance
