module type MACHINE = sig
  type state

  val name : string

  val initial : state

  val apply : state -> string -> state
end

module Make (M : MACHINE) = struct
  type t = { mutable state : M.state; mutable applied : int }

  let create () = { state = M.initial; applied = 0 }

  let state t = t.state

  let applied t = t.applied

  let deliver t (p : Abcast_core.Payload.t) =
    t.state <- M.apply t.state p.data;
    t.applied <- t.applied + 1

  let hooks t =
    {
      Abcast_core.Protocol.checkpoint =
        (fun () -> Abcast_sim.Storage.encode (t.state, t.applied));
      install =
        (fun blob ->
          let (st, n) : M.state * int = Abcast_sim.Storage.decode blob in
          t.state <- st;
          t.applied <- n);
    }

  let factory register node =
    let t = create () in
    register node t;
    (hooks t, deliver t)
end
