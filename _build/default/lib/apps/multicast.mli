(** Total order multicast to distinct groups (paper §6.4).

    Messages are addressed to a set of {e groups}; only members of a
    destination group deliver, and any two processes that both deliver two
    multicasts deliver them in the same relative order — even when the
    destination sets differ (global total order consistency).

    This implementation derives the multicast from the single-group
    Atomic Broadcast: every multicast is A-broadcast to the whole system
    and filtered by membership at delivery. That trivially yields all the
    ordering properties in the crash-recovery model (they are inherited
    from the broadcast). It is {e not} "genuine" in the sense of Fritzke
    et al. (the paper's [6]): processes outside the destination also do
    ordering work. The genuine protocol — one consensus per destination
    group plus a max-timestamp exchange — is the §6.4 extension the paper
    leaves open; its crash-recovery variant would reuse exactly the
    consensus building block packaged here. *)

type group = int

type t
(** The multicast view of one process. *)

val create : member_of:group list -> t
(** A process that belongs to the given groups. *)

val encode : dst:group list -> string -> string
(** Payload to [A-broadcast]: the destination set plus the message body.
    [dst] must be non-empty. *)

val deliver : t -> Abcast_core.Payload.t -> unit
(** Wire as the A-deliver upcall: filters by membership (payloads that are
    not multicasts, or whose destinations do not intersect this process's
    groups, are skipped). *)

val delivered : t -> (Abcast_core.Payload.id * string) list
(** Multicasts delivered to this process, in delivery order. *)

val delivered_count : t -> int

val skipped : t -> int
(** Multicasts this process ordered but did not deliver (not addressed to
    it) — the cost of non-genuineness, measured. *)
