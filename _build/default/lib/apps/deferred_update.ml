module Smap = Map.Make (String)

(* Per key: (value, version). Versions count committed writers. *)
type t = {
  mutable data : (int * int) Smap.t;
  mutable committed : int;
  mutable aborted : int;
}

type record = { reads : (string * int) list; writes : (string * int) list }

let create () = { data = Smap.empty; committed = 0; aborted = 0 }

let read t key =
  match Smap.find_opt key t.data with Some vv -> vv | None -> (0, 0)

module Txn = struct
  type txn = {
    db : t;
    mutable rset : (string * int) list; (* key, version read *)
    mutable wset : (string * int) list; (* key, new value *)
  }

  let begin_ db = { db; rset = []; wset = [] }

  let read txn key =
    match List.assoc_opt key txn.wset with
    | Some v -> v (* read-your-writes *)
    | None ->
      let value, version = read txn.db key in
      if not (List.mem_assoc key txn.rset) then
        txn.rset <- (key, version) :: txn.rset;
      value

  let write txn key v =
    txn.wset <- (key, v) :: List.remove_assoc key txn.wset

  let payload txn =
    Abcast_sim.Storage.encode { reads = txn.rset; writes = txn.wset }
end

let certify t (r : record) =
  List.for_all
    (fun (key, version) -> snd (read t key) = version)
    r.reads

let deliver t (p : Abcast_core.Payload.t) =
  match (Abcast_sim.Storage.decode p.data : record) with
  | exception _ -> () (* not a transaction: ignore *)
  | r ->
    if certify t r then begin
      List.iter
        (fun (key, v) ->
          let _, version = read t key in
          t.data <- Smap.add key (v, version + 1) t.data)
        r.writes;
      t.committed <- t.committed + 1
    end
    else t.aborted <- t.aborted + 1

let committed t = t.committed

let aborted t = t.aborted

let digest t =
  Smap.fold (fun k (v, ver) acc -> Hashtbl.hash (acc, k, v, ver)) t.data 0
  |> string_of_int

let hooks t =
  {
    Abcast_core.Protocol.checkpoint =
      (fun () -> Abcast_sim.Storage.encode (t.data, t.committed, t.aborted));
    install =
      (fun blob ->
        let (data, c, a) : (int * int) Smap.t * int * int =
          Abcast_sim.Storage.decode blob
        in
        t.data <- data;
        t.committed <- c;
        t.aborted <- a);
  }
