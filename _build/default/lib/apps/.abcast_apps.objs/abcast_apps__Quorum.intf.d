lib/apps/quorum.mli: Abcast_core
