lib/apps/multicast.ml: Abcast_core Abcast_sim List
