lib/apps/bank.ml: Abcast_sim Array Smr
