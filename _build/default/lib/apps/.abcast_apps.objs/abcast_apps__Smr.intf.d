lib/apps/smr.mli: Abcast_core
