lib/apps/smr.ml: Abcast_core Abcast_sim
