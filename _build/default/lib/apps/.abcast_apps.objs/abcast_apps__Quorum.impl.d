lib/apps/quorum.ml: Abcast_core Abcast_sim Array Hashtbl List
