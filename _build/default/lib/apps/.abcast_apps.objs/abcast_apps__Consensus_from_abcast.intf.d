lib/apps/consensus_from_abcast.mli: Abcast_core
