lib/apps/kv.mli: Smr
