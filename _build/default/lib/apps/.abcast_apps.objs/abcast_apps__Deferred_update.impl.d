lib/apps/deferred_update.ml: Abcast_core Abcast_sim Hashtbl List Map String
