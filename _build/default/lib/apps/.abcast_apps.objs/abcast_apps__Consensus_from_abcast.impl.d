lib/apps/consensus_from_abcast.ml: Abcast_core Abcast_sim Hashtbl
