lib/apps/bank.mli: Smr
