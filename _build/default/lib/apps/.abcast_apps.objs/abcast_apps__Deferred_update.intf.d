lib/apps/deferred_update.mli: Abcast_core
