lib/apps/kv.ml: Abcast_sim Hashtbl Map Smr String
