lib/apps/multicast.mli: Abcast_core
