(** State-machine replication on top of Atomic Broadcast.

    The canonical use the paper motivates (§1): every replica applies the
    same totally ordered command sequence to a deterministic state
    machine, so all replicas stay consistent. The functor also produces
    the [A-checkpoint]/install hooks of the augmented interface (Fig. 5):
    the application state *is* the checkpoint, logically containing all
    applied commands. *)

module type MACHINE = sig
  type state

  val name : string

  val initial : state

  val apply : state -> string -> state
  (** Apply one delivered command (must be deterministic). Unparseable
      commands must be ignored (return the state unchanged), never
      raise — a replica cannot refuse a command others accept. *)
end

module Make (M : MACHINE) : sig
  type t
  (** One replica (volatile; rebuilt on recovery by replay or checkpoint
      installation). *)

  val create : unit -> t

  val state : t -> M.state

  val applied : t -> int
  (** Number of commands reflected in [state] (including those inside an
      installed checkpoint). *)

  val deliver : t -> Abcast_core.Payload.t -> unit
  (** Wire this as the protocol's A-deliver upcall. *)

  val hooks : t -> Abcast_core.Protocol.app
  (** [A-checkpoint]/install hooks serializing [(state, applied)]. *)

  val factory :
    (int -> t -> unit) -> Abcast_core.Factory.app_factory
  (** [factory register] builds the per-process application factory for
      {!Abcast_core.Factory.alternative}: at each (re)start of process [i]
      it creates a fresh replica, calls [register i replica] (so the
      scenario can keep a handle) and returns its hooks and deliver
      upcall. *)
end
