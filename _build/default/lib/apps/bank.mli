(** Replicated bank — an SMR application with a global invariant.

    Accounts hold integer balances; commands move or mint money. Because
    every replica applies the same command sequence, the total balance is
    conserved across replicas at every matching point of the sequence;
    the fault-injection tests use {!total} as a cheap cross-replica
    consistency oracle (any divergence in ordering shows up as different
    totals or balances). Transfers that would overdraw are rejected
    deterministically. *)

type state

module Machine : Smr.MACHINE with type state = state

module Replica : module type of Smr.Make (Machine)

val accounts : int
(** Fixed number of accounts (16). *)

val deposit_cmd : account:int -> amount:int -> string

val transfer_cmd : src:int -> dst:int -> amount:int -> string

val balance : state -> int -> int

val total : state -> int
(** Sum of all balances — conserved by transfers, grown by deposits. *)
