lib/util/heap.mli:
