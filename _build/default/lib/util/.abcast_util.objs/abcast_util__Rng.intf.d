lib/util/rng.mli:
