type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step: advance by the golden gamma, then mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free: 62 bits of entropy modulo a small bound has
     negligible bias for the bounds used in the simulator. The shift by 2
     keeps the value non-negative in OCaml's 63-bit native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 1e-12 then 1e-12 else u in
  -.mean *. log u

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
