(** Imperative binary min-heap.

    The simulator's event queue: keys are [(time, sequence)] pairs so
    insertion order breaks ties deterministically. Kept polymorphic in the
    element type; the ordering is supplied at creation time. *)

type 'a t
(** A mutable heap of ['a]. *)

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool
(** [is_empty h] is [length h = 0]. *)

val push : 'a t -> 'a -> unit
(** Insert an element. O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element, if any, without removing it. O(1). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. O(log n). *)

val clear : 'a t -> unit
(** Remove every element. *)

val to_list : 'a t -> 'a list
(** Elements in unspecified order (for inspection in tests). *)
