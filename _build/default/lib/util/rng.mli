(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic choice in the simulator (message delays, loss,
    duplication, workload inter-arrival times, fault schedules) is drawn
    from an explicit [Rng.t] so that a run is a pure function of its seed.
    SplitMix64 is used because it is tiny, fast, splittable and has
    well-studied statistical quality. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay [t]'s future
    stream from this point. *)

val split : t -> t
(** [split t] derives a new generator whose stream is statistically
    independent of [t]'s; [t] is advanced once. Use it to give each
    node / link its own stream so that adding draws in one component
    does not perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (for Poisson
    arrival processes and heavy-ish delay tails). *)

val pick : t -> 'a array -> 'a
(** Uniform choice among the elements of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
