(** Ready-made protocol stacks.

    Convenience instantiations of {!Protocol.Make} over the two consensus
    implementations. Experiment E8 runs the same workloads over both to
    demonstrate that the broadcast layer treats consensus as a black
    box. *)

module Over_paxos : module type of Protocol.Make (Abcast_consensus.Paxos)

module Over_coord : module type of Protocol.Make (Abcast_consensus.Coord)
