let encode payloads =
  Abcast_sim.Storage.encode (Payload.sort_batch payloads)

let decode value : Payload.t list = Abcast_sim.Storage.decode value

let size = String.length
