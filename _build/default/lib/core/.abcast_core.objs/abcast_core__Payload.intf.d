lib/core/payload.mli: Format
