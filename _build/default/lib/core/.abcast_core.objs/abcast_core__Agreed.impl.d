lib/core/agreed.ml: Format List Payload Vclock
