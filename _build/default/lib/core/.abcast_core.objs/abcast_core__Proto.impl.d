lib/core/proto.ml: Abcast_sim Payload Vclock
