lib/core/batch.ml: Abcast_sim Payload String
