lib/core/vclock.ml: Format List Map Payload
