lib/core/payload.ml: Format List String
