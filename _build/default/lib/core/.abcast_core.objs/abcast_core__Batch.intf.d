lib/core/batch.mli: Abcast_consensus Payload
