lib/core/protocol.mli: Abcast_consensus Abcast_fd Abcast_sim Agreed Format Payload Vclock
