lib/core/stacks.ml: Abcast_consensus Protocol
