lib/core/protocol.ml: Abcast_consensus Abcast_fd Abcast_sim Agreed Batch Format Hashtbl List Payload Printf String Vclock
