lib/core/factory.ml: Abcast_consensus Abcast_sim Option Payload Proto Protocol
