lib/core/factory.mli: Payload Proto Protocol
