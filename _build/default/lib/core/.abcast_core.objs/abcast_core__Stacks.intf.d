lib/core/stacks.mli: Abcast_consensus Protocol
