lib/core/agreed.mli: Format Payload Vclock
