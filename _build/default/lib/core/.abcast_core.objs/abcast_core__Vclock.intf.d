lib/core/vclock.mli: Format Payload
