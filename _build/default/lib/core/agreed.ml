type t = {
  mutable base_app : string option;
  mutable base_len : int;
  mutable vc : Vclock.t;
  mutable tail_rev : Payload.t list;
  mutable tail_len : int;
}

type repr = {
  base_app : string option;
  base_len : int;
  vc : Vclock.t;
  tail : Payload.t list;
}

let create () =
  { base_app = None; base_len = 0; vc = Vclock.empty; tail_rev = []; tail_len = 0 }

let contains (t : t) id = Vclock.contains t.vc id

let append (t : t) (p : Payload.t) =
  if contains t p.id then false
  else begin
    t.vc <- Vclock.add t.vc p.id;
    t.tail_rev <- p :: t.tail_rev;
    t.tail_len <- t.tail_len + 1;
    true
  end

let total_len (t : t) = t.base_len + t.tail_len

let tail (t : t) = List.rev t.tail_rev

let vc (t : t) = t.vc

let compact (t : t) ~app_blob =
  t.base_app <- Some app_blob;
  t.base_len <- total_len t;
  t.tail_rev <- [];
  t.tail_len <- 0

let snapshot (t : t) =
  { base_app = t.base_app; base_len = t.base_len; vc = t.vc; tail = tail t }

let suffix_snapshot (t : t) ~from_len =
  if from_len < t.base_len || from_len > total_len t then None
  else
    let skip = from_len - t.base_len in
    Some
      {
        base_app = None;
        base_len = from_len;
        vc = t.vc;
        tail = List.filteri (fun i _ -> i >= skip) (tail t);
      }

let restore (r : repr) =
  {
    base_app = r.base_app;
    base_len = r.base_len;
    vc = r.vc;
    tail_rev = List.rev r.tail;
    tail_len = List.length r.tail;
  }

let set_to (t : t) (r : repr) =
  t.base_app <- r.base_app;
  t.base_len <- r.base_len;
  t.vc <- r.vc;
  t.tail_rev <- List.rev r.tail;
  t.tail_len <- List.length r.tail

let adopt (t : t) (r : repr) =
  let donor_total = r.base_len + List.length r.tail in
  let mine = total_len t in
  if donor_total <= mine then `Deliver []
  else if mine >= r.base_len then begin
    (* Our sequence covers the donor's base: the missing messages are a
       suffix of the donor's tail (total order makes ours a prefix). *)
    let skip = mine - r.base_len in
    let missing = List.filteri (fun i _ -> i >= skip) r.tail in
    set_to t r;
    `Deliver missing
  end
  else begin
    set_to t r;
    `Install (r.base_app, r.tail)
  end

let pp ppf (t : t) =
  Format.fprintf ppf "agreed<base:%d%s tail:%d>" t.base_len
    (match t.base_app with Some _ -> "(app)" | None -> "")
    t.tail_len
