(** Encoding of message batches as consensus values.

    Each round of the protocol proposes its [Unordered] set to consensus
    as one opaque value (paper §4.1); this module fixes the bijection.
    Encoding sorts and deduplicates by identity, so equal sets encode to
    equal byte strings regardless of insertion order — which matters for
    the idempotent re-propose after recovery (property P4). *)

val encode : Payload.t list -> Abcast_consensus.Consensus_intf.value

val decode : Abcast_consensus.Consensus_intf.value -> Payload.t list
(** Inverse of {!encode}; the result is sorted by identity. *)

val size : Abcast_consensus.Consensus_intf.value -> int
(** Encoded size in bytes (for logging/throughput accounting). *)
