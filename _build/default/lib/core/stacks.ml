module Over_paxos = Protocol.Make (Abcast_consensus.Paxos)

module Over_coord = Protocol.Make (Abcast_consensus.Coord)
