type id = { origin : int; boot : int; seq : int }

let compare_id a b =
  let c = compare a.origin b.origin in
  if c <> 0 then c
  else
    let c = compare a.boot b.boot in
    if c <> 0 then c else compare a.seq b.seq

let equal_id a b = compare_id a b = 0

let pp_id ppf { origin; boot; seq } =
  Format.fprintf ppf "p%d.%d.%d" origin boot seq

type t = { id : id; data : string }

let compare a b = compare_id a.id b.id

let pp ppf t = Format.fprintf ppf "%a(%d bytes)" pp_id t.id (String.length t.data)

let sort_batch batch =
  let sorted = List.sort compare batch in
  let rec dedupe = function
    | a :: b :: rest when equal_id a.id b.id -> dedupe (a :: rest)
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  dedupe sorted
