(** Application messages and their identities.

    The paper (§2.2) makes messages unique by tagging them with
    [(local sequence number, sender identity)]. In the crash-recovery
    model a sender's volatile sequence counter restarts after a crash, so
    the identity also carries the sender's boot (incarnation) number — the
    counter a real system keeps in stable storage and our engine provides
    as [io.incarnation]. Identities order lexicographically by
    [(origin, boot, seq)]; this is also the protocol's "predetermined
    deterministic rule" for placing the messages of one decided batch. *)

type id = { origin : int; boot : int; seq : int }

val compare_id : id -> id -> int

val equal_id : id -> id -> bool

val pp_id : Format.formatter -> id -> unit
(** Rendered as ["p<origin>.<boot>.<seq>"]. *)

type t = { id : id; data : string }
(** A message offered to [A-broadcast]. *)

val compare : t -> t -> int
(** Orders by {!compare_id} (payload bytes never influence order). *)

val pp : Format.formatter -> t -> unit

val sort_batch : t list -> t list
(** Sort a decided batch by identity and drop duplicate identities — the
    deterministic insertion rule of Fig. 2. *)
