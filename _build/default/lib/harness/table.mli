(** Plain-text experiment tables.

    The benchmark harness prints one table per experiment in the style of
    a paper's evaluation section: a caption, a header row, aligned
    columns. Cells are preformatted strings; {!num} and {!flt} help format
    them consistently. *)

val num : int -> string
(** Integer with thousands separators ("12_345" -> "12,345"). *)

val flt : ?dec:int -> float -> string
(** Float with [dec] decimals (default 2); nan prints as "-". *)

val ratio : float -> float -> string
(** ["a/b"-style multiplier], e.g. [ratio 90. 30. = "3.00x"]. *)

val print : title:string -> header:string list -> string list list -> unit
(** Render to stdout. Column widths adapt to content. *)
