(** Runtime monitors for the paper's proof lemmas (§5.6, P1–P7).

    The paper's correctness argument rests on seven properties of the
    executions; this module turns the log-observable ones into continuous
    monitors. Attach one to a cluster and it samples every process's
    stable storage (up or down) on a period, flagging:

    - {b P1/P2} — the sequence of logged round numbers (the checkpoint's
      [k]) at one process never decreases;
    - {b P4} — a logged consensus proposal never changes once written
      (re-proposals after recovery reuse the logged value);
    - {b P5} — a logged decision never changes once written;
    - {b Uniform Agreement} — two processes never log different decisions
      for the same consensus instance (checked across {e all} processes,
      including ones that crashed afterwards — the uniformity the paper's
      §3.4 demands);
    - {b P3} — at quiescence ({!check_converged}), good processes have
      joined the same round.

    P6/P7 (dissemination obligations) are delivery-level and covered by
    {!Checks.termination}. *)

type t

val attach : Cluster.t -> ?period:int -> unit -> t
(** Start sampling every [period] simulated µs (default 5_000). Sampling
    re-schedules itself forever; violations are accumulated. *)

val sample_now : t -> unit
(** Take one sample immediately (e.g. right after a targeted fault). *)

val violations : t -> string list
(** All violations observed so far, oldest first (empty = healthy). *)

val report : t -> (unit, string) result
(** [Ok ()] if no violation was ever observed, otherwise the first. *)

val check_converged : t -> good:int list -> (unit, string) result
(** P3 at quiescence: every listed process is in the same round and their
    logged decision sets agree instance-by-instance. Call after the run
    has settled. *)
