let num n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let flt ?(dec = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" dec x

let ratio a b = if b = 0.0 then "-" else Printf.sprintf "%.2fx" (a /. b)

let print ~title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render row =
    List.mapi (fun c w -> pad w (Option.value ~default:"" (List.nth_opt row c))) widths
    |> String.concat "  "
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (render header);
  Printf.printf "%s\n" (String.make (String.length (render header)) '-');
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows;
  print_newline ()
