lib/harness/lemmas.mli: Cluster
