lib/harness/lemmas.ml: Abcast_consensus Abcast_core Abcast_sim Cluster Format Hashtbl List Printf String
