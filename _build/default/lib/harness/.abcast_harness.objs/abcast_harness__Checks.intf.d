lib/harness/checks.mli: Abcast_core Cluster
