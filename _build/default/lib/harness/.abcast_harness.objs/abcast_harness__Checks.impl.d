lib/harness/checks.ml: Abcast_core Array Cluster Format Hashtbl List Printf Result
