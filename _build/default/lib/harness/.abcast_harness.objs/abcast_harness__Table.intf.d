lib/harness/table.mli:
