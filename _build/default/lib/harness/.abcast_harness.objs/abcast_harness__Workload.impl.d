lib/harness/workload.ml: Abcast_util Array Char Cluster String
