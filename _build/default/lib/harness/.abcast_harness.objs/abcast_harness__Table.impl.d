lib/harness/table.ml: Buffer Float List Option Printf String
