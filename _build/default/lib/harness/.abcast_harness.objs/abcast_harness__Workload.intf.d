lib/harness/workload.mli: Abcast_util Cluster
