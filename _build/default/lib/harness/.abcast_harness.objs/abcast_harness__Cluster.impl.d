lib/harness/cluster.ml: Abcast_core Abcast_sim Array Fun Hashtbl List
