lib/harness/cluster.mli: Abcast_core Abcast_sim
