lib/sim/storage.ml: Array Buffer Char Filename Hashtbl List Marshal Metrics Printf String Sys
