lib/sim/metrics.ml: Array Hashtbl List Stdlib String
