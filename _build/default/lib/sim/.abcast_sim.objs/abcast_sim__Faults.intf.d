lib/sim/faults.mli: Abcast_util Engine
