lib/sim/storage.mli: Metrics
