lib/sim/metrics.mli:
