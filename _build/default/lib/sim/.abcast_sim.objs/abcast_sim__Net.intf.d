lib/sim/net.mli: Abcast_util
