lib/sim/net.ml: Abcast_util Hashtbl Option
