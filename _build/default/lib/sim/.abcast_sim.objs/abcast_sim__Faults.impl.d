lib/sim/faults.ml: Abcast_util Array Engine List
