lib/sim/engine.ml: Abcast_util Array List Metrics Net Printf Storage Trace
