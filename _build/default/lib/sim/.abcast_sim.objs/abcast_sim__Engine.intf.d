lib/sim/engine.mli: Abcast_util Metrics Net Storage Trace
