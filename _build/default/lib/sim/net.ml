module Rng = Abcast_util.Rng

type params = {
  delay_min : int;
  delay_max : int;
  loss : float;
  dup : float;
  heavy_tail : float;
}

type t = {
  default : params;
  overrides : (int * int, params) Hashtbl.t;
  mutable cut : (src:int -> dst:int -> bool) option;
}

let check_params p =
  if p.delay_min < 0 || p.delay_max < p.delay_min then
    invalid_arg "Net.create: bad delay bounds"

let create ?(delay_min = 500) ?(delay_max = 2000) ?(loss = 0.0) ?(dup = 0.0)
    ?(heavy_tail = 0.01) () =
  let default = { delay_min; delay_max; loss; dup; heavy_tail } in
  check_params default;
  { default; overrides = Hashtbl.create 4; cut = None }

let set_link t ~src ~dst ?delay_min ?delay_max ?loss ?dup ?heavy_tail () =
  let d = match Hashtbl.find_opt t.overrides (src, dst) with
    | Some p -> p
    | None -> t.default
  in
  let p =
    {
      delay_min = Option.value delay_min ~default:d.delay_min;
      delay_max = Option.value delay_max ~default:d.delay_max;
      loss = Option.value loss ~default:d.loss;
      dup = Option.value dup ~default:d.dup;
      heavy_tail = Option.value heavy_tail ~default:d.heavy_tail;
    }
  in
  check_params p;
  Hashtbl.replace t.overrides (src, dst) p

let reset_links t = Hashtbl.reset t.overrides

let params_for t ~src ~dst =
  match Hashtbl.find_opt t.overrides (src, dst) with
  | Some p -> p
  | None -> t.default

let partition t pred = t.cut <- Some pred

let heal t = t.cut <- None

let is_partitioned t ~src ~dst =
  match t.cut with None -> false | Some pred -> pred ~src ~dst

type verdict = Drop | Deliver of int list

let sample_delay p rng =
  let base = p.delay_min + Rng.int rng (p.delay_max - p.delay_min + 1) in
  if Rng.chance rng p.heavy_tail then base + Rng.int rng (9 * p.delay_max + 1)
  else base

let transmit t ~rng ~src ~dst =
  if src = dst then
    (* Local hand-off: reliable, fast, no duplication. *)
    Deliver [ 1 ]
  else if is_partitioned t ~src ~dst then Drop
  else begin
    let p = params_for t ~src ~dst in
    if Rng.chance rng p.loss then Drop
    else begin
      let first = sample_delay p rng in
      if Rng.chance rng p.dup then Deliver [ first; sample_delay p rng ]
      else Deliver [ first ]
    end
  end
