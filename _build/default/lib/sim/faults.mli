(** Fault injection: crash/recovery schedules.

    Builds the paper's process classification (§3.3) into test scenarios:
    a {e good} process eventually remains permanently up; a {e bad} process
    eventually stays down or oscillates forever. Plans are generated purely
    from an {!Abcast_util.Rng.t} (so they are reproducible), then applied
    to an engine as scheduled crash/recover actions. *)

type kind = Crash | Recover

type event = { time : Engine.time; node : int; kind : kind }

type plan = {
  events : event list;  (** time-ordered crash/recover actions *)
  good : bool array;  (** classification of each process *)
  horizon : Engine.time;  (** end of the disturbed period *)
}

val down_between :
  'm Engine.t -> node:int -> from_:Engine.time -> until:Engine.time -> unit
(** Schedule one crash at [from_] and a recovery at [until]. *)

val plan_random :
  rng:Abcast_util.Rng.t ->
  n:int ->
  ?n_bad:int ->
  ?mtbf:int ->
  ?mttr:int ->
  stability:Engine.time ->
  unit ->
  plan
(** [plan_random ~rng ~n ~stability ()] draws a schedule over
    [\[0, stability)]:

    - [n_bad] processes (default 0, must leave a majority good) are marked
      bad; each either crashes permanently at a random time or oscillates
      with the given mean times; bad oscillation continues past
      [stability] up to [4 * stability].
    - good processes crash and recover with exponential inter-event times
      of mean [mtbf] (default [stability/4]) and downtime mean [mttr]
      (default [stability/20]); their last recovery is scheduled strictly
      before [stability], after which they stay up forever.

    The returned plan always keeps every good process's final state up. *)

val apply : 'm Engine.t -> plan -> unit
(** Schedule every event of the plan on the engine. *)

val good_nodes : plan -> int list
(** Identities of the good processes, ascending. *)
