type entry = { time : int; node : int; text : string }

type t = {
  mutable enabled : bool;
  echo : bool;
  mutable entries : entry list; (* reversed *)
}

let create ?(enabled = false) ?(echo = false) () =
  { enabled; echo; entries = [] }

let enable t b = t.enabled <- b

let emit t ~time ~node text =
  if t.enabled then begin
    let e = { time; node; text } in
    t.entries <- e :: t.entries;
    if t.echo then Printf.printf "[%8d] p%d %s\n%!" time node text
  end

let emitf t ~time ~node fmt =
  if t.enabled then
    Format.kasprintf (fun s -> emit t ~time ~node s) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let entries t = List.rev t.entries

let find t pred = List.find_opt pred (entries t)

let dump t ppf =
  List.iter
    (fun e -> Format.fprintf ppf "[%8d] p%d %s@." e.time e.node e.text)
    (entries t)

let clear t = t.entries <- []
