module Rng = Abcast_util.Rng

type kind = Crash | Recover

type event = { time : Engine.time; node : int; kind : kind }

type plan = {
  events : event list;
  good : bool array;
  horizon : Engine.time;
}

let down_between eng ~node ~from_ ~until =
  Engine.at eng from_ (fun () -> Engine.crash eng node);
  Engine.at eng until (fun () -> Engine.recover eng node)

(* Alternating up/down episodes for one node over [lo, hi); the node is up
   at [lo]. Returns events whose final state is up iff the last event is a
   recovery or there is no event. *)
let episodes ~rng ~node ~lo ~hi ~mtbf ~mttr =
  let rec go acc t =
    let up_for = 1 + int_of_float (Rng.exponential rng ~mean:(float_of_int mtbf)) in
    let crash_at = t + up_for in
    if crash_at >= hi then List.rev acc
    else begin
      let down_for = 1 + int_of_float (Rng.exponential rng ~mean:(float_of_int mttr)) in
      let recover_at = min (crash_at + down_for) (hi - 1) in
      let acc = { time = recover_at; node; kind = Recover }
                :: { time = crash_at; node; kind = Crash } :: acc in
      go acc (recover_at + 1)
    end
  in
  go [] lo

let plan_random ~rng ~n ?(n_bad = 0) ?mtbf ?mttr ~stability () =
  if n_bad * 2 >= n then invalid_arg "Faults.plan_random: need a good majority";
  let mtbf = match mtbf with Some x -> x | None -> max 1 (stability / 4) in
  let mttr = match mttr with Some x -> x | None -> max 1 (stability / 20) in
  let good = Array.make n true in
  (* Pick the bad set uniformly. *)
  let ids = Array.init n (fun i -> i) in
  Rng.shuffle rng ids;
  for i = 0 to n_bad - 1 do
    good.(ids.(i)) <- false
  done;
  let events = ref [] in
  let horizon = ref stability in
  for node = 0 to n - 1 do
    if good.(node) then
      events := episodes ~rng ~node ~lo:0 ~hi:stability ~mtbf ~mttr @ !events
    else begin
      (* Bad: permanently crashed, or oscillating well past stability. *)
      if Rng.bool rng then begin
        let t = Rng.int rng (max 1 stability) in
        events := { time = t; node; kind = Crash } :: !events
      end
      else begin
        let hi = 4 * stability in
        horizon := max !horizon hi;
        let evs = episodes ~rng ~node ~lo:0 ~hi ~mtbf ~mttr in
        (* Force a final crash so the node does not accidentally end up. *)
        let final = { time = hi; node; kind = Crash } in
        events := (final :: List.rev evs |> List.rev) @ !events
      end
    end
  done;
  let events = List.stable_sort (fun a b -> compare a.time b.time) !events in
  { events; good; horizon = !horizon }

let apply eng plan =
  List.iter
    (fun { time; node; kind } ->
      match kind with
      | Crash -> Engine.at eng time (fun () -> Engine.crash eng node)
      | Recover -> Engine.at eng time (fun () -> Engine.recover eng node))
    plan.events

let good_nodes plan =
  let out = ref [] in
  for i = Array.length plan.good - 1 downto 0 do
    if plan.good.(i) then out := i :: !out
  done;
  !out
