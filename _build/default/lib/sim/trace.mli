(** Timestamped event trace.

    Cheap structured logging for simulations: protocols emit one-line
    events; tests assert over them; examples print them as a timeline.
    Disabled traces drop events without formatting cost. *)

type t

type entry = { time : int; node : int; text : string }

val create : ?enabled:bool -> ?echo:bool -> unit -> t
(** [echo] additionally prints each entry to stdout as it is emitted. *)

val enable : t -> bool -> unit

val emit : t -> time:int -> node:int -> string -> unit
(** Record an entry (no-op when disabled). *)

val emitf :
  t -> time:int -> node:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are only evaluated when the
    trace is enabled. *)

val entries : t -> entry list
(** All entries in emission order. *)

val find : t -> (entry -> bool) -> entry option
(** First entry satisfying the predicate. *)

val dump : t -> Format.formatter -> unit
(** Print the whole timeline, one entry per line. *)

val clear : t -> unit
