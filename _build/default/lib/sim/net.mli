(** Network model (paper §3.1: unreliable but fair channels).

    Channels connect every ordered pair of processes. They are not FIFO,
    they may lose and duplicate messages, and delays are finite but
    arbitrary — all per the paper's model. Fairness (a message sent
    infinitely often is received infinitely often) holds as long as the
    loss probability is below 1, which protocol retransmission/gossip
    relies on.

    Self-addressed messages (a process multisending to itself) bypass
    loss and partitions: they model local hand-off, not a wire.

    Partitions are an extension used by tests: while a predicate holds,
    matching links silently drop everything. *)

type t
(** A network configuration shared by one simulation. *)

val create :
  ?delay_min:int ->
  ?delay_max:int ->
  ?loss:float ->
  ?dup:float ->
  ?heavy_tail:float ->
  unit ->
  t
(** [create ()] builds a model. Delays are uniform in
    [\[delay_min, delay_max\]] simulated microseconds (defaults 500..2000);
    with probability [heavy_tail] (default 0.01) a message instead takes up
    to 10x [delay_max], modelling the "arbitrary but finite" tail. [loss]
    (default 0) and [dup] (default 0) are per-message probabilities. *)

val set_link :
  t ->
  src:int ->
  dst:int ->
  ?delay_min:int ->
  ?delay_max:int ->
  ?loss:float ->
  ?dup:float ->
  ?heavy_tail:float ->
  unit ->
  unit
(** Override parameters of one directed link (asymmetric networks, a slow
    or flaky host). Unspecified fields keep their current value. *)

val reset_links : t -> unit
(** Drop all per-link overrides. *)

val partition : t -> (src:int -> dst:int -> bool) -> unit
(** Install a partition predicate: links for which it returns [true] drop
    every message until {!heal} is called. *)

val heal : t -> unit
(** Remove any installed partition. *)

val is_partitioned : t -> src:int -> dst:int -> bool
(** Whether the link is currently cut. *)

(** Decision for one message offered to the network. *)
type verdict =
  | Drop  (** lost (loss or partition) *)
  | Deliver of int list
      (** deliver after each listed delay — more than one element means
          the channel duplicated the message *)

val transmit : t -> rng:Abcast_util.Rng.t -> src:int -> dst:int -> verdict
(** Sample the fate of one message on the [src -> dst] channel. *)
