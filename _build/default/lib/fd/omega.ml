type t = unit -> int

let of_heartbeat hb () = Heartbeat.leader hb

let fixed i () = i
