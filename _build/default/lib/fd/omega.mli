(** The Ω (eventual leader) oracle interface.

    A thin, implementation-agnostic view over a failure detector: consensus
    protocols take a [unit -> int] leader estimate rather than a concrete
    detector, mirroring the paper's insistence (§3.5, §7) that nothing in
    the stack above consensus is bound to a particular failure-detection
    mechanism. *)

type t = unit -> int
(** A leader oracle: each call returns the current leader estimate. In a
    run where the system eventually stabilizes, all good processes' oracles
    eventually agree forever on one good process. *)

val of_heartbeat : Heartbeat.t -> t
(** The oracle backed by a {!Heartbeat} detector. *)

val fixed : int -> t
(** A constant oracle (unit tests / degenerate scenarios). *)
