lib/fd/heartbeat.mli: Abcast_sim Format
