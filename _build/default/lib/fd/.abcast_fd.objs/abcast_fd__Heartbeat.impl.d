lib/fd/heartbeat.ml: Abcast_sim Array Format
