lib/fd/omega.mli: Heartbeat
