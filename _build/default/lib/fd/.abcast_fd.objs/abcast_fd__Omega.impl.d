lib/fd/omega.ml: Heartbeat
