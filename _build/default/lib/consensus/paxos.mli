(** Crash-recovery consensus #1: single-decree Paxos.

    Classic Synod with all three roles (proposer, acceptor, learner) at
    every process. It is naturally suited to the crash-recovery model: an
    acceptor logs its [(promised, accepted)] state before answering, so a
    recovered acceptor never contradicts its past promises, and quorum
    intersection carries decided values across crashes.

    Liveness is delegated to the Ω oracle: a process retries a higher
    ballot on a timer only while it believes itself leader, and sends a
    [Query] otherwise (so a late process still learns decisions from
    decided peers). Safety never depends on Ω.

    Stable-storage writes per instance at one process: the proposal
    (1 write — the one the atomic broadcast layer piggybacks on),
    acceptor-state updates, and the decision (1 write). *)

(** Wire messages, exposed for white-box tests and tracing. *)
type msg =
  | Prepare of { b : int }  (** phase 1a *)
  | Promise of { b : int; accepted : (int * Consensus_intf.value) option }
      (** phase 1b *)
  | Reject of { b : int }  (** nack carrying the blocking promise *)
  | Accept of { b : int; v : Consensus_intf.value }  (** phase 2a *)
  | Accepted of { b : int }  (** phase 2b *)
  | Query  (** "anyone decided?" probe from a non-leader *)
  | Decide of { v : Consensus_intf.value }  (** decision announcement *)

include Consensus_intf.S with type msg := msg

val retry_period : int ref
(** Base retransmission/ballot-retry period in simulated µs
    (default 8_000); tests shrink it to accelerate convergence. *)
