(** Crash-recovery consensus #2: rotating-coordinator protocol.

    A Chandra–Toueg ◇S-style protocol adapted to the crash-recovery model
    in the spirit of Hurfin–Mostéfaoui–Raynal (paper's reference [11]):
    rounds [r = 0, 1, …] with coordinator [r mod n]; in each round
    processes send their timestamped estimate to the coordinator, which
    picks the estimate with the highest timestamp and proposes it;
    processes {e log} the adopted estimate before acknowledging, so a
    majority of acks "locks" the value across crashes (quorum
    intersection then forces every later coordinator to re-propose it).

    Suspicion is implicit: a process that waits too long in a round simply
    moves to the next round (timeouts escalate with the round number), so
    this implementation needs no leader oracle at all — together with
    {!Paxos} it demonstrates the paper's claim that the broadcast layer is
    bound to no particular failure-detection mechanism. *)

(** Wire messages, exposed for white-box tests and tracing. *)
type msg =
  | Estimate of { r : int; v : Consensus_intf.value; ts : int }
      (** phase 1: member's estimate to round [r]'s coordinator *)
  | Proposal of { r : int; v : Consensus_intf.value }
      (** phase 2: coordinator's pick *)
  | Ack of { r : int }  (** phase 3: locked and acknowledged *)
  | Query  (** "anyone decided?" probe *)
  | Decide of { v : Consensus_intf.value }  (** decision announcement *)

include Consensus_intf.S with type msg := msg

val round_timeout : int ref
(** Base round timeout in simulated µs (default 12_000). The effective
    timeout grows linearly with the round number, capped at 10x. *)
