lib/consensus/multi.mli: Abcast_fd Abcast_sim Consensus_intf Format
