lib/consensus/coord.mli: Consensus_intf
