lib/consensus/coord.ml: Abcast_sim Abcast_util Consensus_intf Format Keys List Printf
