lib/consensus/multi.ml: Abcast_fd Abcast_sim Consensus_intf Format Hashtbl Keys List
