lib/consensus/paxos.mli: Consensus_intf
