lib/consensus/consensus_intf.ml: Abcast_fd Abcast_sim Format Printf String
