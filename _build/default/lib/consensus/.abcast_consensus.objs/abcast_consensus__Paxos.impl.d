lib/consensus/paxos.ml: Abcast_fd Abcast_sim Abcast_util Consensus_intf Format Keys List Printf
