lib/baseline/ct_abcast.mli: Abcast_core
