lib/baseline/rbcast.ml: Abcast_core Abcast_sim Format Hashtbl
