lib/baseline/rbcast.mli: Abcast_core Abcast_sim Format
