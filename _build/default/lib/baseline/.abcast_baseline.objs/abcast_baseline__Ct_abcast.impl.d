lib/baseline/ct_abcast.ml: Abcast_consensus Abcast_core Abcast_sim
