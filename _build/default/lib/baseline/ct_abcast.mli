(** Crash-stop baseline (Chandra–Toueg-style atomic broadcast).

    The paper notes (§5.6, §7) that when crashes are definitive its
    protocol reduces to the Chandra–Toueg transformation — same
    round-per-batch structure, no logging needed. This baseline makes that
    concrete for experiment E7: it runs the {e same} basic protocol code
    but with every stable-storage write redirected to a discarded volatile
    store, so it performs zero (accounted) log operations. In crash-free
    runs its message pattern and latency are identical to the basic
    protocol's; the entire difference is the logging the crash-recovery
    model requires.

    Processes of this stack must never be crashed: with no durable state
    there is nothing to recover. *)

val stack :
  ?consensus:Abcast_core.Factory.consensus ->
  ?gossip_period:int ->
  unit ->
  Abcast_core.Proto.t
(** A packaged crash-stop stack named ["ct-stop/<consensus>"]. *)
