(** Reliable broadcast for the crash-stop model.

    The classic eager-relay algorithm Chandra–Toueg's atomic broadcast
    builds on: on first reception of a message, forward it to everyone,
    then deliver. With no process recovery and reliable channels this
    guarantees that if any correct process delivers, all correct processes
    deliver. It is {e not} correct under crash-recovery (a recovering
    process has forgotten what it relayed and delivered) — which is
    precisely why the paper replaces it with gossip; the test suite
    demonstrates the failure. *)

type msg

val pp_msg : Format.formatter -> msg -> unit

type t

val create :
  msg Abcast_sim.Engine.io -> deliver:(Abcast_core.Payload.t -> unit) -> t

val broadcast : t -> string -> Abcast_core.Payload.id
(** R-broadcast a payload (delivered locally via the relay path too). *)

val handle : t -> src:int -> msg -> unit

val delivered_count : t -> int
