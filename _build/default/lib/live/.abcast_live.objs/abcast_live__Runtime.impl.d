lib/live/runtime.ml: Abcast_core Abcast_sim Abcast_util Array Bytes Condition Filename Float List Marshal Mutex Printf Queue String Thread Unix
