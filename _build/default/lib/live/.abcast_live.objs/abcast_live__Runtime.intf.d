lib/live/runtime.mli: Abcast_core
