bench/main.mli:
