bench/experiments.ml: Abcast_apps Abcast_baseline Abcast_core Abcast_fd Abcast_harness Abcast_sim Abcast_util Array Fun List Sys
