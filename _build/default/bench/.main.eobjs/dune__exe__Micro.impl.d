bench/micro.ml: Abcast_core Abcast_harness Abcast_sim Abcast_util Analyze Array Bechamel Benchmark Hashtbl Instance List Measure Printf Staged String Test Time Toolkit
